"""Tests for the parallel sweep runner, its cache integration, and the CLI."""

import json

import pytest

from emissary.api import PolicySpec, SimRequest
from emissary.engine import CacheConfig
from emissary.hierarchy import HierarchyConfig
from emissary.sweep import (SWEEP_SCHEMA_VERSION, add_fairness, build_envelope,
                            build_grid, demo_grid, main, make_config,
                            run_config, run_sweep, solo_requests)
from emissary.traces import InterleaveSpec, TraceSpec


def small_grid(n=2_000):
    cache = CacheConfig(num_sets=16, ways=4)
    traces = [TraceSpec("loop", n, 1, {"footprint_lines": 100})]
    return build_grid(traces, ["lru", "emissary"], cache, seed=1,
                      hp_thresholds=[2], prob_invs=[8])


def hierarchy_grid(n=2_000):
    cache = HierarchyConfig(l1=CacheConfig(num_sets=8, ways=2),
                            l2=CacheConfig(num_sets=16, ways=4))
    traces = [TraceSpec("loop", n, 1, {"footprint_lines": 100})]
    return build_grid(traces, ["lru", "emissary"], cache, seed=1,
                      hp_thresholds=[2], prob_invs=[8], min_l1_misses=2)


def multicore_grid(n=2_000):
    cache = HierarchyConfig(l1=CacheConfig(num_sets=8, ways=2),
                            l2=CacheConfig(num_sets=16, ways=4))
    mix = InterleaveSpec(cores=(TraceSpec("loop", n, 1,
                                          {"footprint_lines": 100}),
                                TraceSpec("call", n // 2, 2)),
                         weights=(2, 1))
    return build_grid([mix], ["lru", "emissary"], cache, seed=1,
                      hp_thresholds=[2], prob_invs=[8], min_l1_misses=2,
                      hp_budgets=("shared", "partitioned"))


def test_build_grid_hp_budget_axis():
    grid = multicore_grid()
    assert len(grid) == 3  # lru + emissary x {shared, partitioned}
    emissary = [g for g in grid if g.policy.name == "emissary"]
    # Shared is the implicit default — no param, so pre-existing cache
    # keys stay stable; only the partitioned point is annotated.
    assert sorted(g.policy.params.get("hp_budget", "shared")
                  for g in emissary) == ["partitioned", "shared"]
    assert sum("hp_budget" in g.policy.params for g in emissary) == 1


def test_solo_requests_strip_budget_axis():
    partitioned = next(g for g in multicore_grid()
                       if "hp_budget" in g.policy.params)
    solos = solo_requests(partitioned)
    assert [s.trace.kind for s in solos] == ["loop", "call"]
    for solo in solos:
        assert not solo.is_multicore
        assert "hp_budget" not in solo.policy.params  # shared == partitioned solo
        assert solo.config == partitioned.config
        assert solo.seed == partitioned.seed
    with pytest.raises(ValueError, match="multi-core"):
        solo_requests(small_grid()[0])


def test_multicore_sweep_smoke_with_fairness(tmp_path):
    rows = run_sweep(multicore_grid(), workers=0, cache_dir=tmp_path)
    assert all("result" in row for row in rows)
    for row in rows:
        assert row["result"]["num_cores"] == 2
        assert [r["core"] for r in row["result"]["per_core"]] == [0, 1]
    assert add_fairness(rows, workers=0, cache_dir=tmp_path) == len(rows)
    for row in rows:
        per_core = row["fairness"]["per_core"]
        assert [r["core"] for r in per_core] == [0, 1]
        for r in per_core:
            assert r["delta_l2_mpki"] == pytest.approx(
                r["shared_l2_mpki"] - r["solo_l2_mpki"])
            assert r["shared_l2_mpki"] == pytest.approx(
                row["result"]["per_core"][r["core"]]["l2_mpki"])
    # Solo baselines are ordinary cacheable sweep points: a rerun of the
    # fairness pass is answered entirely from the results cache.
    again = run_sweep(multicore_grid(), workers=0, cache_dir=tmp_path)
    assert all(row["cached"] for row in again)
    assert add_fairness(again, workers=0, cache_dir=tmp_path) == len(again)
    assert [row["fairness"] for row in again] == [row["fairness"]
                                                  for row in rows]


def test_build_grid_expands_emissary_params():
    cache = CacheConfig(num_sets=16, ways=4)
    traces = [TraceSpec("loop", 100, 1)]
    grid = build_grid(traces, ["lru", "emissary"], cache, 1,
                      hp_thresholds=[2, 4], prob_invs=[16, 32])
    assert len(grid) == 1 + 4  # lru once, emissary 2x2
    assert all(isinstance(g, SimRequest) for g in grid)
    emissary_params = [g.policy.params for g in grid if g.policy.name == "emissary"]
    assert {frozenset(p.items()) for p in emissary_params} == {
        frozenset({"hp_threshold": t, "prob_inv": p}.items())
        for t in (2, 4) for p in (16, 32)
    }


def test_build_grid_threads_min_l1_misses():
    grid = hierarchy_grid()
    emissary = [g for g in grid if g.policy.name == "emissary"]
    assert all(g.policy.params["min_l1_misses"] == 2 for g in emissary)
    assert all(g.is_hierarchy for g in grid)


def test_run_config_returns_stats():
    result = run_config(small_grid()[0].to_dict())
    assert result["policy"] == "lru"
    assert result["n"] == 2_000
    assert 0.0 <= result["hit_rate"] <= 1.0
    assert result["hit_count"] + result["miss_count"] == result["n"]


def test_run_config_hierarchy_returns_per_level_stats():
    result = run_config(hierarchy_grid()[-1].to_dict())  # emissary point
    assert result["policy"] == "emissary"
    assert result["n"] == 2_000
    assert result["l1"]["n"] == 2_000
    assert result["l2"]["n"] == result["l1"]["miss_count"]
    assert result["l2"]["policy_stats"]["min_l1_misses"] == 2
    assert 0.0 <= result["l1_hit_rate"] <= 1.0
    assert 0.0 <= result["l2_local_hit_rate"] <= 1.0


def _scrub_timing(d):
    if isinstance(d, dict):
        return {k: _scrub_timing(v) for k, v in d.items()
                if k != "elapsed_s" and "per_s" not in k}
    return d


def test_run_config_streams_file_traces(tmp_path):
    """A file-backed config must produce the same stats as the same
    addresses simulated from memory (workers stream it chunk by chunk)."""
    from emissary import trace_io

    synth = small_grid()[0]
    path = tmp_path / "t.champsim.gz"
    trace_io.write_trace(path, [synth.trace.generate()])
    file_request = SimRequest(trace_io.file_spec(path), synth.policy,
                              synth.config, seed=synth.seed)
    assert _scrub_timing(run_config(file_request.to_dict())) == \
        _scrub_timing(run_config(synth.to_dict()))


def test_cli_trace_file_sweeps_and_caches(tmp_path, capsys):
    from emissary import trace_io

    path = tmp_path / "t.npy"
    trace_io.write_trace(
        path, [TraceSpec("loop", 2_000, 1, {"footprint_lines": 100}).generate()])
    args = ["--traces", "", "--trace-file", str(path), "--policies", "lru",
            "--num-sets", "16", "--ways", "4", "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out.json")]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "file" in out and "1 simulated" in out
    rows = json.loads((tmp_path / "out.json").read_text())["rows"]
    assert rows[0]["config"]["trace"]["kind"] == "file"
    # Second run: everything cached, even after the file moves.
    moved = tmp_path / "moved.npy"
    path.rename(moved)
    args[3] = str(moved)
    assert main(args) == 0
    assert "1 cached" in capsys.readouterr().out


def test_cli_trace_file_rejected_with_demo(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["--demo", "--trace-file", str(tmp_path / "t.npy")])


def test_sweep_serial_and_cached_rerun(tmp_path):
    grid = small_grid()
    rows = run_sweep(grid, workers=1, cache_dir=tmp_path)
    assert len(rows) == len(grid)
    assert all(not r["cached"] for r in rows)

    again = run_sweep(grid, workers=1, cache_dir=tmp_path)
    assert all(r["cached"] for r in again)
    assert [r["result"] for r in again] == [r["result"] for r in rows]


def _deterministic(result):
    return {k: v for k, v in result.items()
            if k not in ("elapsed_s", "accesses_per_s", "l1", "l2")}


def test_sweep_parallel_matches_serial(tmp_path):
    grid = small_grid() + hierarchy_grid()
    serial = run_sweep(grid, workers=1, cache_dir=tmp_path / "a")
    parallel = run_sweep(grid, workers=2, cache_dir=tmp_path / "b")
    assert ([_deterministic(r["result"]) for r in serial]
            == [_deterministic(r["result"]) for r in parallel])


def test_sweep_recovers_from_corrupt_cache_entry(tmp_path):
    grid = small_grid()
    run_sweep(grid, workers=1, cache_dir=tmp_path)
    victim = next(tmp_path.glob("*.json"))
    victim.write_text("corrupted")
    rows = run_sweep(grid, workers=1, cache_dir=tmp_path)
    assert sum(1 for r in rows if not r["cached"]) == 1  # only the corrupt one


def test_interrupted_sweep_keeps_completed_results(tmp_path):
    """Results must be written back per completion, not in one batch at
    the end — a crash partway through must not lose finished work."""
    good = small_grid()[0]
    bad = dict(good.to_dict())
    bad["trace"] = {"kind": "loop", "n": -1, "seed": 0, "params": {}}
    rows = run_sweep([good, bad], workers=1, cache_dir=tmp_path)
    assert "result" in rows[0] and "error" in rows[1]
    again = run_sweep([good], workers=1, cache_dir=tmp_path)
    assert again[0]["cached"]  # the config that completed survived the bad one


@pytest.mark.parametrize("workers", [1, 2])
def test_sweep_isolates_failing_configs(tmp_path, workers, caplog):
    """One raising config yields an error row; the rest keep running,
    succeed, and get cached — the pool is never killed."""
    grid = [g.to_dict() for g in small_grid()]
    bad = dict(grid[0])
    bad["policy"] = {"name": "lru", "params": {"bogus": 1}}
    rows = run_sweep([grid[0], bad, grid[1]], workers=workers, cache_dir=tmp_path)
    assert [("error" in r) for r in rows] == [False, True, False]
    assert "bogus" in rows[1]["error"]
    assert "result" not in rows[1]
    assert any("failed" in rec.message for rec in caplog.records)
    # Error payloads are never cached; good ones are.
    again = run_sweep([grid[0], bad, grid[1]], workers=1, cache_dir=tmp_path)
    assert [r["cached"] for r in again] == [True, False, True]


def test_sweep_fresh_rows_carry_worker_metadata(tmp_path):
    rows = run_sweep(small_grid(), workers=2, cache_dir=tmp_path)
    for row in rows:
        assert row["worker"]["pid"] > 0
        assert row["worker"]["elapsed_s"] >= 0.0
    cached = run_sweep(small_grid(), workers=2, cache_dir=tmp_path)
    assert all("worker" not in row for row in cached)


def test_sweep_telemetry_flag_rekeys_and_instruments(tmp_path):
    plain = run_sweep(small_grid(), workers=1, cache_dir=tmp_path)
    instrumented = run_sweep(small_grid(), workers=1, cache_dir=tmp_path,
                             telemetry=True)
    # Separate cache keys: the instrumented pass found nothing cached.
    assert all(not r["cached"] for r in instrumented)
    assert all(r["result"].get("telemetry") is None for r in plain)
    for row in instrumented:
        telemetry = row["result"]["telemetry"]
        assert telemetry["counters"]["fills"] > 0
        assert row["config"]["telemetry"] is True
    # Outcomes are not perturbed by instrumentation.
    assert ([r["result"]["hit_rate"] for r in plain]
            == [r["result"]["hit_rate"] for r in instrumented])


def test_demo_grid_covers_all_policies_and_both_levels():
    grid = demo_grid(n=100)
    assert {g.policy.name for g in grid} == {"lru", "random", "srrip", "emissary"}
    single = [g for g in grid if not g.is_multicore]
    assert {g.trace.kind for g in single} == {"loop", "shift", "call"}
    hierarchy = [g for g in grid if g.is_hierarchy]
    assert hierarchy and any(not g.is_hierarchy for g in grid)
    # The demo's hierarchy EMISSARY points gate HP candidacy on measured
    # L1I miss counts.
    assert all(g.policy.params["min_l1_misses"] == 2
               for g in hierarchy if g.policy.name == "emissary")
    # The multi-core leg sweeps the HP-budget axis on a shared L2.
    multicore = [g for g in grid if g.is_multicore]
    assert multicore and all(g.is_hierarchy for g in multicore)
    budgets = {g.policy.params.get("hp_budget", "shared")
               for g in multicore if g.policy.name == "emissary"}
    assert budgets == {"shared", "partitioned"}


def test_make_config_is_cache_key_stable():
    cache = CacheConfig(num_sets=16, ways=4)
    spec = TraceSpec("loop", 100, 1)
    a = make_config(SimRequest(spec, PolicySpec("lru"), cache, 1))
    b = make_config(SimRequest(spec, PolicySpec("lru"), cache, 1))
    assert a == b


def test_cli_demo_writes_results(tmp_path, capsys):
    out = tmp_path / "results.json"
    rc = main(["--demo", "--n", "1000", "--workers", "1",
               "--cache-dir", str(tmp_path / "rc"), "--out", str(out)])
    assert rc == 0
    captured = capsys.readouterr()
    assert "configs" in captured.out
    assert "L1hit%" in captured.out  # per-level columns in the table
    envelope = json.loads(out.read_text())
    assert envelope["schema_version"] == SWEEP_SCHEMA_VERSION
    assert envelope["errors"] == 0
    assert envelope["telemetry_enabled"] is False
    assert "hits" in envelope["cache_stats"]
    rows = envelope["rows"]
    assert len(rows) == envelope["grid_size"] == len(demo_grid(n=1000))
    assert envelope["fresh"] + envelope["cached"] == len(rows)
    assert all("result" in r for r in rows)
    assert any("l1" in r["result"] for r in rows)  # hierarchy rows present


def test_cli_hierarchy_axes(tmp_path, capsys):
    out = tmp_path / "results.json"
    rc = main(["--traces", "loop", "--n", "1000", "--policies", "emissary",
               "--hp-thresholds", "2", "--prob-invs", "8",
               "--num-sets", "32", "--ways", "4",
               "--l1-sets", "8", "--l1-ways", "2", "--min-l1-misses", "2",
               "--workers", "1", "--cache-dir", str(tmp_path / "rc"),
               "--out", str(out)])
    assert rc == 0
    rows = json.loads(out.read_text())["rows"]
    assert len(rows) == 1
    cfg = rows[0]["config"]
    assert cfg["config"]["l1"] == {"num_sets": 8, "ways": 2, "line_size": 64}
    assert cfg["config"]["l2"]["num_sets"] == 32
    assert cfg["policy"]["params"]["min_l1_misses"] == 2
    assert rows[0]["result"]["l2"]["policy_stats"]["min_l1_misses"] == 2
    assert "MPKI" in capsys.readouterr().out


def test_cli_interleave_sweeps_budget_axis(tmp_path, capsys):
    out = tmp_path / "results.json"
    rc = main(["--traces", "loop,call", "--n", "1000", "--policies", "emissary",
               "--hp-thresholds", "2", "--prob-invs", "8",
               "--num-sets", "32", "--ways", "4",
               "--l1-sets", "8", "--l1-ways", "2", "--min-l1-misses", "2",
               "--hp-budgets", "shared,partitioned",
               "--interleave", "--weights", "2,1",
               "--workers", "1", "--cache-dir", str(tmp_path / "rc"),
               "--out", str(out)])
    assert rc == 0
    rows = json.loads(out.read_text())["rows"]
    # The interleaved mix rides alongside the plain per-trace points and
    # sweeps both HP-budget modes.
    mix_rows = [r for r in rows if "cores" in r["config"]["trace"]]
    budgets = sorted(r["config"]["policy"]["params"].get("hp_budget", "shared")
                     for r in mix_rows)
    assert budgets == ["partitioned", "shared"]
    for row in mix_rows:
        assert row["result"]["num_cores"] == 2
        assert [pc["core"] for pc in row["fairness"]["per_core"]] == [0, 1]
    assert "mix/loop+call" in capsys.readouterr().out


def test_cli_interleave_requires_hierarchy_and_two_traces(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["--traces", "loop,call", "--interleave", "--n", "100",
              "--cache-dir", str(tmp_path)])  # no --l1-sets
    with pytest.raises(SystemExit):
        main(["--traces", "loop", "--interleave", "--l1-sets", "8",
              "--n", "100", "--cache-dir", str(tmp_path)])
    capsys.readouterr()


def test_build_envelope_aggregates_rows():
    rows = [
        {"config": {}, "result": {}, "cached": True},
        {"config": {}, "result": {}, "cached": False,
         "worker": {"pid": 11, "elapsed_s": 0.5}},
        {"config": {}, "error": "ValueError: boom", "cached": False,
         "worker": {"pid": 11, "elapsed_s": 0.25}},
    ]
    env = build_envelope(rows, seed=7, elapsed_s=1.5,
                         cache_stats={"hits": 1, "misses": 2}, telemetry=True)
    assert env["schema_version"] == SWEEP_SCHEMA_VERSION
    assert (env["grid_size"], env["fresh"], env["cached"], env["errors"]) == (3, 1, 1, 1)
    assert env["seed"] == 7 and env["telemetry_enabled"] is True
    assert env["workers"]["11"] == {"configs": 2, "elapsed_s": 0.75}
    assert env["cache_stats"] == {"hits": 1, "misses": 2}


def test_cli_telemetry_flag_embeds_payload(tmp_path):
    out = tmp_path / "results.json"
    rc = main(["--traces", "loop", "--n", "1000", "--policies", "emissary",
               "--hp-thresholds", "2", "--prob-invs", "8",
               "--num-sets", "16", "--ways", "4", "--workers", "1",
               "--cache-dir", str(tmp_path / "rc"), "--telemetry",
               "--out", str(out)])
    assert rc == 0
    envelope = json.loads(out.read_text())
    assert envelope["telemetry_enabled"] is True
    telemetry = envelope["rows"][0]["result"]["telemetry"]
    assert telemetry["counters"]["hp_promotions"] >= 0
    assert [s["name"] for s in telemetry["spans"]].count("kernel_loop") == 1


def test_cli_exits_nonzero_on_config_error(tmp_path, capsys, monkeypatch):
    import emissary.sweep as sweep_mod

    bad = dict(small_grid()[0].to_dict())
    bad["trace"] = {"kind": "loop", "n": -1, "seed": 0, "params": {}}
    monkeypatch.setattr(sweep_mod, "demo_grid", lambda n, seed: [bad])
    out = tmp_path / "results.json"
    rc = main(["--demo", "--workers", "1", "--cache-dir", str(tmp_path / "rc"),
               "--out", str(out)])
    assert rc == 1
    assert "ERROR" in capsys.readouterr().out  # the table shows the error row
    envelope = json.loads(out.read_text())
    assert envelope["errors"] == 1  # the envelope is still written
    assert "error" in envelope["rows"][0]


def test_cli_single_level_argument_parsing(tmp_path, capsys):
    rc = main(["--traces", "loop,call", "--n", "500", "--policies", "lru,srrip",
               "--workers", "1", "--cache-dir", str(tmp_path / "rc")])
    assert rc == 0
    table = capsys.readouterr().out
    assert "4 configs" in table  # 2 traces x 2 policies
    assert "srrip" in table
