"""Tests for the EMI lint framework, its rule catalog, and the CLI.

Each rule gets a minimal firing fixture and a minimal non-firing one,
plus the ``# emi: ignore[...]`` escape hatch, module scoping (kernel- and
numpy-only rules), syntax-error handling (EMI000), rule selection, and
the three CLI exit codes (0 clean / 1 violations / 2 usage error).
"""

import json
import textwrap

import pytest

from emissary.analysis import lint_paths, lint_source
from emissary.analysis.__main__ import main as analysis_main
from emissary.analysis.rules import ALL_RULES


def codes(source, path="module.py", select=None):
    return [v.code for v in lint_source(textwrap.dedent(source),
                                        path=path, select=select)]


# -- EMI001: unseeded / legacy randomness --------------------------------

def test_emi001_flags_stdlib_random_import():
    assert codes("import random\n") == ["EMI001"]
    assert codes("from random import shuffle\n") == ["EMI001"]


def test_emi001_flags_legacy_numpy_random():
    assert codes("import numpy as np\nx = np.random.rand(4)\n") == ["EMI001"]


def test_emi001_flags_unseeded_default_rng():
    assert codes("import numpy as np\nrng = np.random.default_rng()\n") \
        == ["EMI001"]


def test_emi001_allows_seeded_generator_api():
    assert codes("""\
        import numpy as np
        rng = np.random.default_rng(42)
        gen = np.random.Generator(np.random.PCG64(7))
    """) == []


# -- EMI002: wall-clock in kernel hot paths ------------------------------

def test_emi002_flags_wall_clock_in_kernel_module():
    src = "import time\nstamp = time.time()\n"
    assert codes(src, path="src/emissary/engine.py") == ["EMI002"]
    assert codes(src, path="src/emissary/policies/lru.py") == ["EMI002"]
    # Same source outside a kernel module: no finding.
    assert codes(src, path="src/emissary/report.py") == []


def test_emi002_monotonic_only_flagged_in_hot_functions():
    hot = """\
        import time
        def run_set(self, set_index, tags):
            t0 = time.perf_counter()
            return []
    """
    cold = """\
        import time
        def to_dict(self):
            return {"elapsed": time.perf_counter()}
    """
    assert codes(hot, path="src/emissary/engine.py") == ["EMI002"]
    assert codes(cold, path="src/emissary/engine.py") == []


# -- EMI003: mutable attributes on frozen dataclasses --------------------

def test_emi003_flags_mutable_field_on_frozen_dataclass():
    assert codes("""\
        from dataclasses import dataclass
        from typing import Dict
        @dataclass(frozen=True)
        class Spec:
            params: Dict[str, int]
    """) == ["EMI003"]


def test_emi003_exempts_post_init_canonicalized_fields():
    assert codes("""\
        from dataclasses import dataclass
        @dataclass(frozen=True)
        class Spec:
            params: dict
            def __post_init__(self):
                object.__setattr__(self, "params", FrozenParams(self.params))
    """) == []


def test_emi003_ignores_unfrozen_dataclasses():
    assert codes("""\
        from dataclasses import dataclass
        @dataclass
        class Row:
            cells: list
    """) == []


# -- EMI004: to_dict without from_dict -----------------------------------

def test_emi004_flags_one_way_serialization():
    one_way = """\
        from dataclasses import dataclass
        @dataclass
        class Spec:
            def to_dict(self):
                return {}
    """
    assert codes(one_way) == ["EMI004"]
    assert codes("""\
        from dataclasses import dataclass
        @dataclass
        class Spec:
            def to_dict(self):
                return {}
            @classmethod
            def from_dict(cls, d):
                return cls()
    """) == []


# -- EMI005: silent exception swallowing ---------------------------------

def test_emi005_flags_silent_except():
    assert codes("""\
        try:
            risky()
        except ValueError:
            pass
    """) == ["EMI005"]


def test_emi005_allows_handled_except():
    assert codes("""\
        try:
            risky()
        except ValueError:
            fallback()
    """) == []


# -- EMI006: implicit NumPy dtype narrowing ------------------------------

def test_emi006_flags_dtype_inference_in_numpy_modules():
    src = "import numpy as np\nx = np.array([1, 2])\n"
    assert codes(src, path="src/emissary/traces.py") == ["EMI006"]
    assert codes(src, path="src/emissary/report.py") == []
    explicit = "import numpy as np\nx = np.array([1, 2], dtype=np.int64)\n"
    assert codes(explicit, path="src/emissary/traces.py") == []


def test_emi006_flags_ambiguous_astype():
    src = "y = x.astype(int)\n"
    assert codes(src, path="src/emissary/trace_io.py") == ["EMI006"]
    ok = "import numpy as np\ny = x.astype(np.int64)\n"
    assert codes(ok, path="src/emissary/trace_io.py") == []


# -- framework mechanics -------------------------------------------------

def test_ignore_pragma_suppresses_named_and_all_codes():
    assert codes("import random  # emi: ignore[EMI001]\n") == []
    assert codes("import random  # emi: ignore\n") == []
    # Naming a different code does not suppress — and since EMI007 the
    # stale EMI005 pragma is itself a finding.
    assert codes("import random  # emi: ignore[EMI005]\n") == [
        "EMI001", "EMI007"]


def test_syntax_error_becomes_emi000():
    violations = lint_source("def broken(:\n", path="bad.py")
    assert [v.code for v in violations] == ["EMI000"]


def test_select_restricts_rules_and_rejects_unknown():
    src = "import random\ntry:\n    x()\nexcept Exception:\n    pass\n"
    assert codes(src, select=["EMI005"]) == ["EMI005"]
    assert sorted(codes(src)) == ["EMI001", "EMI005"]
    with pytest.raises(ValueError):
        lint_source(src, select=["EMI999"])


def test_violation_format_is_tool_style():
    violation = lint_source("import random\n", path="mod.py")[0]
    assert violation.format() == (
        f"mod.py:{violation.line}:{violation.col}: EMI001 {violation.message}")


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "dirty.py").write_text("import random\n")
    report = lint_paths([str(pkg)])
    assert report.files_checked == 2
    assert not report.clean
    assert [v.code for v in report.violations] == ["EMI001"]


def test_repo_source_tree_is_lint_clean():
    report = lint_paths(["src"])
    assert report.clean, "\n".join(v.format() for v in report.violations)


# -- CLI -----------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n")

    assert analysis_main(["lint", str(clean)]) == 0
    assert "1 file clean" in capsys.readouterr().err

    assert analysis_main(["lint", str(dirty)]) == 1
    out = capsys.readouterr()
    assert "EMI001" in out.out and "1 violation(s)" in out.err

    assert analysis_main(["lint", str(tmp_path / "missing.py")]) == 2
    assert "error:" in capsys.readouterr().err

    assert analysis_main(["lint", "--select", "EMI999", str(clean)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_select_limits_rules(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\ntry:\n    x()\nexcept Exception:\n"
                     "    pass\n")
    assert analysis_main(["lint", "--select", "EMI005", str(dirty)]) == 1
    assert "EMI001" not in capsys.readouterr().out


def test_cli_rules_prints_catalog(capsys):
    assert analysis_main(["rules"]) == 0
    out = capsys.readouterr().out
    for cls in ALL_RULES:
        assert cls.code in out


def test_cli_lint_sarif_writes_file(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n")
    out = tmp_path / "out.sarif"
    assert analysis_main(["lint", str(dirty), "--sarif", str(out)]) == 1
    assert f"wrote {out}" in capsys.readouterr().err
    payload = json.loads(out.read_text())
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"][0]["ruleId"] == "EMI001"


def test_cli_schema_exit_codes(tmp_path, capsys):
    # The committed lock matches the tree — the CI drift gate.
    assert analysis_main(["schema", "--check"]) == 0
    capsys.readouterr()
    # A missing lock is drift, not a crash.
    assert analysis_main(
        ["schema", "--check", "--lock", str(tmp_path / "nope.json")]) == 1
    assert "missing" in capsys.readouterr().err
