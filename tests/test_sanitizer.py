"""Tests for the runtime kernel-state sanitizer.

Covers the attach pattern (both engine families, with and without
telemetry), bit-identical outcomes with the sanitizer on, corruption
detection for every policy checker, the whole-run counter consistency
check, and the error payload (set index + access position).
"""

import numpy as np
import pytest

from emissary.analysis.sanitizer import Sanitizer, SanitizerError
from emissary.api import PolicySpec
from emissary.engine import BatchedEngine, CacheConfig, ReferenceEngine
from emissary.hierarchy import (
    BatchedHierarchyEngine,
    HierarchyConfig,
    HierarchyReferenceEngine,
)
from emissary.policies import make_kernel, make_naive
from emissary.telemetry import Telemetry
from emissary.traces import TraceSpec

CONFIG = CacheConfig(num_sets=8, ways=4)
SPECS = [
    PolicySpec("lru"),
    PolicySpec("random"),
    PolicySpec("srrip"),
    PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4}),
]


@pytest.fixture(scope="module")
def addresses():
    footprint = int(CONFIG.num_sets * CONFIG.ways * 1.5)
    return TraceSpec("loop", 4_000, 11, {"footprint_lines": footprint}).generate()


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
@pytest.mark.parametrize("telemetry", [False, True], ids=["plain", "telemetry"])
def test_batched_sanitized_outcomes_identical(addresses, spec, telemetry):
    baseline = BatchedEngine(CONFIG).run(addresses, spec, seed=3)
    sanitizer = Sanitizer()
    tel = Telemetry() if telemetry else None
    result = BatchedEngine(CONFIG, telemetry=tel,
                           sanitizer=sanitizer).run(addresses, spec, seed=3)
    assert np.array_equal(result.hits, baseline.hits)
    assert sanitizer.checks > 0
    # MRU run collapsing folds immediate repeats, so the dispatched
    # access count is positive but never exceeds the trace length.
    assert 0 < sanitizer.accesses <= len(addresses)
    assert sanitizer.attached == [spec.name]


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
def test_reference_sanitized_outcomes_identical(addresses, spec):
    baseline = ReferenceEngine(CONFIG).run(addresses[:800], spec, seed=3)
    sanitizer = Sanitizer()
    result = ReferenceEngine(CONFIG, sanitizer=sanitizer).run(
        addresses[:800], spec, seed=3)
    assert np.array_equal(result.hits, baseline.hits)
    # Every access dispatches on_hit or on_fill, each of which checks.
    assert sanitizer.checks >= len(addresses[:800])


def test_stream_sanitized_matches_oneshot(addresses):
    spec = PolicySpec("emissary", {"hp_threshold": 2, "prob_inv": 4})
    oneshot = BatchedEngine(CONFIG).run(addresses, spec, seed=3)
    sanitizer = Sanitizer()
    chunks = np.array_split(addresses, 5)
    streamed = BatchedEngine(CONFIG, sanitizer=sanitizer).simulate_stream(
        chunks, spec, seed=3)
    assert np.array_equal(streamed.hits, oneshot.hits)
    assert sanitizer.checks > 0


def test_hierarchy_engines_share_one_sanitizer(addresses):
    spec = PolicySpec("emissary",
                      {"hp_threshold": 2, "prob_inv": 4, "min_l1_misses": 2})
    config = HierarchyConfig(l1=CacheConfig(num_sets=4, ways=2), l2=CONFIG)
    baseline = BatchedHierarchyEngine(config).run(addresses, spec, seed=3)
    sanitizer = Sanitizer()
    result = BatchedHierarchyEngine(config, sanitizer=sanitizer).run(
        addresses, spec, seed=3)
    assert np.array_equal(result.l1.hits, baseline.l1.hits)
    assert np.array_equal(result.l2.hits, baseline.l2.hits)
    # Both stages attach to the same instance: L1 policy plus L2 policy.
    assert len(sanitizer.attached) == 2
    assert sanitizer.checks > 0

    ref_sanitizer = Sanitizer()
    reference = HierarchyReferenceEngine(config, sanitizer=ref_sanitizer).run(
        addresses[:800], spec, seed=3)
    assert np.array_equal(reference.l1.hits, baseline.l1.hits[:800])
    assert ref_sanitizer.checks > 0


def test_emissary_hp_count_corruption_detected():
    kernel = make_kernel("emissary", num_sets=4, ways=2,
                         hp_threshold=1, prob_inv=2)
    sanitizer = Sanitizer()
    sanitizer.attach_kernel(kernel)
    kernel.hp_counts[0] = 5
    with pytest.raises(SanitizerError, match=r"hp_counts\[0\] = 5") as exc:
        kernel.run_set(0, [1, 2], [0.9, 0.9])
    assert exc.value.set_index == 0
    assert exc.value.access_position == 2
    assert "[set 0, access 2]" in str(exc.value)


def test_lru_overfull_set_detected():
    kernel = make_kernel("lru", num_sets=2, ways=2)
    sanitizer = Sanitizer()
    sanitizer.attach_kernel(kernel)
    kernel.run_set(0, [1, 2], None)
    # Smuggle a third resident line past the eviction logic.
    kernel._sets[0][99] = None
    with pytest.raises(SanitizerError, match="exceed 2 ways"):
        kernel.run_set(0, [1], None)


def test_naive_srrip_rrpv_corruption_detected():
    impl = make_naive("srrip", num_sets=2, ways=2)
    sanitizer = Sanitizer()
    sanitizer.attach_naive(impl)
    impl.on_fill(0, 0, 0, 0.5)
    impl.rrpv[1] = 99  # way 1 of set 0; the post-dispatch scan covers the set
    with pytest.raises(SanitizerError, match="RRPV 99"):
        impl.on_hit(0, 0, 1)


def test_naive_random_counts_dispatches_without_checker():
    impl = make_naive("random", num_sets=2, ways=2)
    sanitizer = Sanitizer()
    sanitizer.attach_naive(impl)
    impl.on_fill(0, 0, 0, 0.5)
    impl.on_hit(0, 0, 1)
    assert sanitizer.checks == 2  # stateless policy: count-only wrapping


def _telemetry_with(**counters):
    tel = Telemetry()
    for name, value in counters.items():
        tel.inc(name, value)
    return tel


def test_check_counters_accepts_consistent_payload():
    tel = _telemetry_with(hits=6, misses=4, fills=4, evictions=2,
                          dead_on_fill=1, evictions_hp=1, evictions_lp=1,
                          hp_promotions=3, hp_demotions=2, hp_lines_final=1)
    sanitizer = Sanitizer()
    sanitizer.check_counters(tel, n=10, hit_count=6)
    assert sanitizer.checks == 1


@pytest.mark.parametrize("counters, pattern", [
    ({"hits": 5, "misses": 4, "fills": 4}, "counter hits = 5"),
    ({"hits": 6, "misses": 4, "fills": 9}, "counter fills = 9"),
    ({"hits": 6, "misses": 4, "fills": 4, "evictions": 7},
     "evictions = 7 exceeds fills"),
    ({"hits": 6, "misses": 4, "fills": 4, "evictions": 2, "dead_on_fill": 3},
     "dead_on_fill = 3 exceeds evictions"),
    ({"hits": 6, "misses": 4, "fills": 4, "evictions": 2,
      "evictions_hp": 2, "evictions_lp": 1}, "!= evictions"),
    ({"hp_promotions": 3, "hp_demotions": 1, "hp_lines_final": 1},
     "!= hp_lines_final"),
])
def test_check_counters_rejects_inconsistency(counters, pattern):
    sanitizer = Sanitizer()
    with pytest.raises(SanitizerError, match=pattern):
        sanitizer.check_counters(_telemetry_with(**counters), n=10, hit_count=6)


def test_sanitizer_error_without_location_has_no_suffix():
    err = SanitizerError("boom")
    assert str(err) == "boom"
    assert err.set_index is None and err.access_position is None
